// Package rtree implements a disk-resident R-tree bulkloaded with the STR
// algorithm, plus the synchronized tree-traversal spatial join of Brinkhoff
// et al. (SIGMOD '93) — the R-TREE baseline of the paper's evaluation
// (§VII-A) — and the indexed nested-loop join (§VIII-A).
//
// Nodes are stored one per disk page. Leaf pages hold spatial elements;
// internal pages hold child entries (child page ID + subtree MBB), which
// share the element serialization format. The tree records its height, so
// pages need no level tags.
package rtree

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/storage"
	"repro/internal/str"
	"repro/internal/sweep"
)

// Config controls bulkloading.
type Config struct {
	// Fanout caps entries per node (leaf and internal). When zero the page
	// capacity is used: 146 entries on 8KB pages, matching the order of
	// magnitude of the paper's fanout of 135.
	Fanout int
	// World bounds the STR partitioning regions.
	World geom.Box
}

// Tree is a bulkloaded, paged R-tree.
type Tree struct {
	st     storage.Store
	root   storage.PageID
	height int // number of levels; leaves are level 0, root is height-1
	fanout int
	mbb    geom.Box
	size   int
}

// BuildStats reports the cost of bulkloading.
type BuildStats struct {
	// Wall is the elapsed bulkload time (CPU; I/O is counted separately).
	Wall time.Duration
	// IO is the storage traffic of the bulkload.
	IO storage.Stats
	// Pages is the total number of tree pages written.
	Pages int
	// Height is the number of tree levels.
	Height int
}

// Bulkload builds an R-tree over elems using STR packing. The element slice
// is reordered in place.
func Bulkload(st storage.Store, elems []geom.Element, cfg Config) (*Tree, BuildStats, error) {
	start := time.Now()
	before := st.Stats()
	fanout := cfg.Fanout
	if fanout <= 0 || fanout > storage.ElementsPerPage(st.PageSize()) {
		fanout = storage.ElementsPerPage(st.PageSize())
	}
	if fanout < 2 {
		return nil, BuildStats{}, fmt.Errorf("rtree: page size %d too small for fanout 2", st.PageSize())
	}
	world := cfg.World
	if !world.Valid() || world.Volume() == 0 {
		world = geom.MBBOf(elems)
	}

	t := &Tree{st: st, fanout: fanout, mbb: geom.MBBOf(elems), size: len(elems)}
	pages := 0

	// Level 0: STR-pack the elements into leaf pages.
	level := make([]geom.Element, 0) // entries describing the current level
	parts := str.Split(elems, fanout, world)
	buf := make([]byte, st.PageSize())
	writeNode := func(entries []geom.Element) (storage.PageID, error) {
		id, err := st.Alloc(1)
		if err != nil {
			return 0, err
		}
		if err := storage.EncodeElementsPage(buf, entries); err != nil {
			return 0, err
		}
		if err := st.Write(id, buf); err != nil {
			return 0, err
		}
		pages++
		return id, nil
	}

	if len(parts) == 0 {
		// Empty dataset: a single empty leaf keeps every code path uniform.
		id, err := writeNode(nil)
		if err != nil {
			return nil, BuildStats{}, err
		}
		t.root = id
		t.height = 1
		return t, BuildStats{Wall: time.Since(start), IO: st.Stats().Sub(before), Pages: pages, Height: 1}, nil
	}

	for _, p := range parts {
		id, err := writeNode(elems[p.Start:p.End])
		if err != nil {
			return nil, BuildStats{}, err
		}
		level = append(level, geom.Element{ID: uint64(id), Box: p.PageMBB})
	}
	t.height = 1

	// Upper levels: STR-pack the child entries until a single root remains.
	for len(level) > 1 {
		parts := str.Split(level, fanout, world)
		next := make([]geom.Element, 0, len(parts))
		for _, p := range parts {
			id, err := writeNode(level[p.Start:p.End])
			if err != nil {
				return nil, BuildStats{}, err
			}
			next = append(next, geom.Element{ID: uint64(id), Box: p.PageMBB})
		}
		level = next
		t.height++
	}
	t.root = storage.PageID(level[0].ID)
	return t, BuildStats{Wall: time.Since(start), IO: st.Stats().Sub(before), Pages: pages, Height: t.height}, nil
}

// Height returns the number of levels in the tree.
func (t *Tree) Height() int { return t.height }

// Len returns the number of indexed elements.
func (t *Tree) Len() int { return t.size }

// MBB returns the bounding box of all indexed elements.
func (t *Tree) MBB() geom.Box { return t.mbb }

// Store returns the tree's backing store.
func (t *Tree) Store() storage.Store { return t.st }

// readNode reads the entries of one node page through the given store view
// (which may be a cache wrapping the tree's store).
func (t *Tree) readNode(st storage.Store, id storage.PageID, buf []byte) ([]geom.Element, error) {
	return storage.ReadElementPage(st, id, nil, buf)
}

// SearchStats counts the work of window queries.
type SearchStats struct {
	Comparisons     uint64 // element MBB tests at leaves
	MetaComparisons uint64 // entry MBB tests at internal nodes
	NodesVisited    uint64
}

// Search emits every indexed element whose MBB intersects q.
func (t *Tree) Search(q geom.Box, emit func(geom.Element)) (SearchStats, error) {
	var stats SearchStats
	buf := make([]byte, t.st.PageSize())
	err := t.search(t.st, t.root, t.height-1, q, buf, &stats, emit)
	return stats, err
}

func (t *Tree) search(st storage.Store, id storage.PageID, level int, q geom.Box, buf []byte, stats *SearchStats, emit func(geom.Element)) error {
	entries, err := t.readNode(st, id, buf)
	if err != nil {
		return err
	}
	stats.NodesVisited++
	if level == 0 {
		for _, e := range entries {
			stats.Comparisons++
			if e.Box.Intersects(q) {
				emit(e)
			}
		}
		return nil
	}
	for _, c := range entries {
		stats.MetaComparisons++
		if c.Box.Intersects(q) {
			if err := t.search(st, storage.PageID(c.ID), level-1, q, buf, stats, emit); err != nil {
				return err
			}
		}
	}
	return nil
}

// JoinConfig controls the synchronized traversal join.
type JoinConfig struct {
	// CachePages sizes the buffer pool shared by both trees during the
	// join; 1024 pages (8MB at the default page size) when zero, enough to
	// pin the hot upper levels as a real traversal would.
	CachePages int
	// Stop, when non-nil, is a cooperative abort flag: once raised, the
	// traversal descends into no further node pair and SyncJoin returns
	// normally with partial stats (streaming callers abort through it).
	Stop *atomic.Bool
}

// JoinStats reports the cost of a join.
type JoinStats struct {
	// Comparisons counts element-element MBB intersection tests (the
	// paper's "#intersection tests").
	Comparisons uint64
	// MetaComparisons counts node-entry MBB tests steering the traversal.
	MetaComparisons uint64
	// IO is the join-phase storage traffic (cache hits excluded).
	IO storage.Stats
	// Wall is the elapsed in-memory time of the join.
	Wall time.Duration
	// Results counts emitted pairs.
	Results uint64
}

// SyncJoin performs the synchronized R-tree traversal join between two
// trees, emitting every intersecting element pair exactly once (a from ta,
// b from tb).
func SyncJoin(ta, tb *Tree, cfg JoinConfig, emit func(a, b geom.Element)) (JoinStats, error) {
	cachePages := cfg.CachePages
	if cachePages <= 0 {
		cachePages = 1024
	}
	var stats JoinStats
	start := time.Now()
	beforeA := ta.st.Stats()
	var beforeB storage.Stats
	sharedStore := tb.st == ta.st
	if !sharedStore {
		beforeB = tb.st.Stats()
	}
	// Separate cache views per tree (they may share one store; the cache
	// then still works because page IDs are store-global).
	var stA, stB storage.Store
	if sharedStore {
		c := storage.NewLRU(ta.st, cachePages)
		stA, stB = c, c
	} else {
		stA = storage.NewLRU(ta.st, cachePages/2)
		stB = storage.NewLRU(tb.st, cachePages/2)
	}
	bufA := make([]byte, ta.st.PageSize())
	bufB := make([]byte, tb.st.PageSize())
	err := syncJoin(ta, tb, stA, stB, ta.root, tb.root, ta.height-1, tb.height-1, bufA, bufB, cfg.Stop, &stats, emit)
	stats.Wall = time.Since(start)
	stats.IO = ta.st.Stats().Sub(beforeA)
	if !sharedStore {
		stats.IO = stats.IO.Add(tb.st.Stats().Sub(beforeB))
	}
	return stats, err
}

func syncJoin(ta, tb *Tree, stA, stB storage.Store, pa, pb storage.PageID, la, lb int, bufA, bufB []byte, stop *atomic.Bool, stats *JoinStats, emit func(a, b geom.Element)) error {
	if stop != nil && stop.Load() {
		return nil
	}
	ea, err := ta.readNode(stA, pa, bufA)
	if err != nil {
		return err
	}
	eb, err := tb.readNode(stB, pb, bufB)
	if err != nil {
		return err
	}
	switch {
	case la == 0 && lb == 0:
		// Leaf/leaf: plane sweep over the elements (paper §VII-A).
		stats.Comparisons += sweep.Join(ea, eb, func(a, b geom.Element) {
			stats.Results++
			emit(a, b)
		})
	case la > 0 && lb > 0:
		// Internal/internal: plane sweep over the entries, recurse on
		// intersecting child pairs.
		type pair struct{ a, b storage.PageID }
		var pairs []pair
		stats.MetaComparisons += sweep.Join(ea, eb, func(a, b geom.Element) {
			pairs = append(pairs, pair{storage.PageID(a.ID), storage.PageID(b.ID)})
		})
		for _, p := range pairs {
			if err := syncJoin(ta, tb, stA, stB, p.a, p.b, la-1, lb-1, bufA, bufB, stop, stats, emit); err != nil {
				return err
			}
		}
	case la > 0:
		// A taller: descend A against the whole B node.
		mbbB := geom.MBBOf(eb)
		for _, c := range ea {
			stats.MetaComparisons++
			if c.Box.Intersects(mbbB) {
				if err := syncJoin(ta, tb, stA, stB, storage.PageID(c.ID), pb, la-1, lb, bufA, bufB, stop, stats, emit); err != nil {
					return err
				}
			}
		}
	default:
		// B taller: symmetric.
		mbbA := geom.MBBOf(ea)
		for _, c := range eb {
			stats.MetaComparisons++
			if c.Box.Intersects(mbbA) {
				if err := syncJoin(ta, tb, stA, stB, pa, storage.PageID(c.ID), la, lb-1, bufA, bufB, stop, stats, emit); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// IndexedNestedLoop joins the outer elements against the tree by issuing one
// window query per outer element (reference [5] of the paper). It is only
// competitive when the outer set is tiny compared to the indexed set.
func IndexedNestedLoop(t *Tree, outer []geom.Element, cfg JoinConfig, emit func(indexed, outer geom.Element)) (JoinStats, error) {
	cachePages := cfg.CachePages
	if cachePages <= 0 {
		cachePages = 1024
	}
	var stats JoinStats
	start := time.Now()
	before := t.st.Stats()
	cached := storage.NewLRU(t.st, cachePages)
	buf := make([]byte, t.st.PageSize())
	for _, o := range outer {
		var s SearchStats
		if err := t.search(cached, t.root, t.height-1, o.Box, buf, &s, func(e geom.Element) {
			stats.Results++
			emit(e, o)
		}); err != nil {
			return stats, err
		}
		stats.Comparisons += s.Comparisons
		stats.MetaComparisons += s.MetaComparisons
	}
	stats.Wall = time.Since(start)
	stats.IO = t.st.Stats().Sub(before)
	return stats, nil
}
