package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/naive"
	"repro/internal/storage"
)

func build(t testing.TB, elems []geom.Element, fanout int) *Tree {
	t.Helper()
	st := storage.NewMemStore(0)
	tree, _, err := Bulkload(st, elems, Config{Fanout: fanout, World: datagen.DefaultWorld()})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBulkloadShape(t *testing.T) {
	elems := datagen.Uniform(datagen.Config{N: 5000, Seed: 1})
	st := storage.NewMemStore(0)
	tree, bs, err := Bulkload(st, elems, Config{Fanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 5000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	// With fanout 16 and 5000 elements: ~313 leaves, ~20 internals, 2-3 upper levels.
	if tree.Height() < 3 {
		t.Fatalf("height = %d, want >= 3", tree.Height())
	}
	if bs.Pages != st.NumPages() {
		t.Fatalf("pages written %d != allocated %d", bs.Pages, st.NumPages())
	}
	if bs.IO.Writes == 0 {
		t.Fatal("bulkload should write pages")
	}
}

func TestBulkloadEmpty(t *testing.T) {
	tree := build(t, nil, 16)
	if tree.Height() != 1 {
		t.Fatalf("empty tree height = %d", tree.Height())
	}
	var hits int
	if _, err := tree.Search(datagen.DefaultWorld(), func(geom.Element) { hits++ }); err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Fatalf("empty tree returned %d results", hits)
	}
}

func TestSearchMatchesScan(t *testing.T) {
	elems := datagen.DenseCluster(datagen.Config{N: 3000, Seed: 2, MaxSide: 5})
	tree := build(t, append([]geom.Element(nil), elems...), 32)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		c := geom.Point{r.Float64() * 1000, r.Float64() * 1000, r.Float64() * 1000}
		q := geom.BoxAround(c, geom.Point{30, 30, 30})
		got := make(map[uint64]bool)
		if _, err := tree.Search(q, func(e geom.Element) { got[e.ID] = true }); err != nil {
			t.Fatal(err)
		}
		want := make(map[uint64]bool)
		for _, e := range elems {
			if e.Box.Intersects(q) {
				want[e.ID] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: search found %d, scan %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing element %d", trial, id)
			}
		}
	}
}

func TestSearchVisitsFewNodes(t *testing.T) {
	elems := datagen.Uniform(datagen.Config{N: 20000, Seed: 4, MaxSide: 2})
	tree := build(t, elems, 0)
	q := geom.BoxAround(geom.Point{500, 500, 500}, geom.Point{10, 10, 10})
	stats, err := tree.Search(q, func(geom.Element) {})
	if err != nil {
		t.Fatal(err)
	}
	totalPages := tree.Store().NumPages()
	if int(stats.NodesVisited) > totalPages/4 {
		t.Fatalf("point-ish query visited %d of %d pages", stats.NodesVisited, totalPages)
	}
}

func collectSync(t testing.TB, ta, tb *Tree) ([]geom.Pair, JoinStats) {
	t.Helper()
	var pairs []geom.Pair
	stats, err := SyncJoin(ta, tb, JoinConfig{}, func(a, b geom.Element) {
		pairs = append(pairs, geom.Pair{A: a.ID, B: b.ID})
	})
	if err != nil {
		t.Fatal(err)
	}
	return pairs, stats
}

func TestSyncJoinMatchesNaive(t *testing.T) {
	a := datagen.Uniform(datagen.Config{N: 1500, Seed: 5, MaxSide: 15})
	b := datagen.Uniform(datagen.Config{N: 1200, Seed: 6, MaxSide: 15})
	want := naive.Join(a, b)
	ta := build(t, append([]geom.Element(nil), a...), 32)
	tb := build(t, append([]geom.Element(nil), b...), 32)
	got, stats := collectSync(t, ta, tb)
	if !naive.Equal(got, want) {
		t.Fatalf("sync join disagrees with naive: %d vs %d pairs", len(got), len(want))
	}
	if stats.Results != uint64(len(want)) {
		t.Fatalf("Results = %d, want %d", stats.Results, len(want))
	}
	if stats.Comparisons == 0 || stats.MetaComparisons == 0 {
		t.Fatalf("stats not counted: %+v", stats)
	}
}

func TestSyncJoinSkewedSizes(t *testing.T) {
	// Very different tree heights exercise the height-fixing branches.
	a := datagen.Uniform(datagen.Config{N: 20, Seed: 7, MaxSide: 50})
	b := datagen.MassiveCluster(datagen.Config{N: 4000, Seed: 8, MaxSide: 10})
	want := naive.Join(a, b)
	ta := build(t, append([]geom.Element(nil), a...), 4)
	tb := build(t, append([]geom.Element(nil), b...), 4)
	if ta.Height() == tb.Height() {
		t.Fatalf("test requires different heights, got %d and %d", ta.Height(), tb.Height())
	}
	got, _ := collectSync(t, ta, tb)
	if !naive.Equal(got, want) {
		t.Fatalf("skewed sync join disagrees: %d vs %d pairs", len(got), len(want))
	}
}

func TestSyncJoinEmptySides(t *testing.T) {
	a := datagen.Uniform(datagen.Config{N: 100, Seed: 9})
	ta := build(t, a, 8)
	te := build(t, nil, 8)
	got, _ := collectSync(t, ta, te)
	if len(got) != 0 {
		t.Fatalf("join with empty tree: %d pairs", len(got))
	}
	got, _ = collectSync(t, te, ta)
	if len(got) != 0 {
		t.Fatalf("join with empty tree (swapped): %d pairs", len(got))
	}
}

func TestSyncJoinSharedStore(t *testing.T) {
	st := storage.NewMemStore(0)
	a := datagen.Uniform(datagen.Config{N: 500, Seed: 10, MaxSide: 20})
	b := datagen.Uniform(datagen.Config{N: 500, Seed: 11, MaxSide: 20})
	want := naive.Join(a, b)
	ta, _, err := Bulkload(st, a, Config{Fanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := Bulkload(st, b, Config{Fanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	var pairs []geom.Pair
	if _, err := SyncJoin(ta, tb, JoinConfig{}, func(x, y geom.Element) {
		pairs = append(pairs, geom.Pair{A: x.ID, B: y.ID})
	}); err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(pairs, want) {
		t.Fatalf("shared-store join disagrees: %d vs %d", len(pairs), len(want))
	}
}

func TestSyncJoinNoDuplicates(t *testing.T) {
	a := datagen.UniformCluster(datagen.Config{N: 2000, Seed: 12, MaxSide: 10})
	b := datagen.DenseCluster(datagen.Config{N: 2000, Seed: 13, MaxSide: 10})
	ta := build(t, append([]geom.Element(nil), a...), 16)
	tb := build(t, append([]geom.Element(nil), b...), 16)
	got, _ := collectSync(t, ta, tb)
	if d := naive.Dedup(append([]geom.Pair(nil), got...)); len(d) != len(got) {
		t.Fatalf("sync join emitted %d duplicate pairs", len(got)-len(d))
	}
}

func TestIndexedNestedLoop(t *testing.T) {
	idx := datagen.Uniform(datagen.Config{N: 3000, Seed: 14, MaxSide: 10})
	outer := datagen.Uniform(datagen.Config{N: 60, Seed: 15, MaxSide: 10})
	want := naive.Join(idx, outer)
	tree := build(t, append([]geom.Element(nil), idx...), 32)
	var got []geom.Pair
	stats, err := IndexedNestedLoop(tree, outer, JoinConfig{}, func(i, o geom.Element) {
		got = append(got, geom.Pair{A: i.ID, B: o.ID})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(got, want) {
		t.Fatalf("INL disagrees with naive: %d vs %d", len(got), len(want))
	}
	if stats.Results != uint64(len(want)) {
		t.Fatalf("Results = %d", stats.Results)
	}
}

func TestJoinIOCounted(t *testing.T) {
	a := datagen.Uniform(datagen.Config{N: 2000, Seed: 16, MaxSide: 10})
	b := datagen.Uniform(datagen.Config{N: 2000, Seed: 17, MaxSide: 10})
	ta := build(t, a, 16)
	tb := build(t, b, 16)
	_, stats := collectSync(t, ta, tb)
	if stats.IO.Reads == 0 {
		t.Fatal("join should read pages")
	}
	if stats.IO.Writes != 0 {
		t.Fatalf("join should not write, wrote %d pages", stats.IO.Writes)
	}
}

func TestPropSyncJoinMatchesNaive(t *testing.T) {
	f := func(seed int64, nA, nB uint8, sideRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		side := float64(sideRaw%80) + 1
		a := datagen.Uniform(datagen.Config{N: int(nA)%150 + 1, Seed: r.Int63(), MaxSide: side})
		b := datagen.Uniform(datagen.Config{N: int(nB)%150 + 1, Seed: r.Int63(), MaxSide: side})
		want := naive.Join(a, b)
		ta := build(t, append([]geom.Element(nil), a...), 4)
		tb := build(t, append([]geom.Element(nil), b...), 4)
		got, _ := collectSync(t, ta, tb)
		return naive.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
