// Package hilbert implements the three-dimensional Hilbert space-filling
// curve. TRANSFORMERS indexes the Hilbert value of the center point of every
// space node with a B+-tree so the adaptive walk can find a start descriptor
// close to any pivot (paper §V, "Adaptive Walk"); the same ordering is used
// to lay out pages sequentially on disk and to give GIPSY a locality-
// preserving guide order.
//
// The implementation is Skilling's transpose algorithm ("Programming the
// Hilbert curve", AIP Conf. Proc. 707, 2004), which converts between
// per-dimension coordinates and the Hilbert index with a handful of bit
// operations per level, for an arbitrary curve order.
package hilbert

import (
	"fmt"

	"repro/internal/geom"
)

// MaxOrder is the largest curve order supported for 3 dimensions: 3*21 = 63
// index bits still fit a uint64.
const MaxOrder = 21

// DefaultOrder gives 16 bits of resolution per dimension (48-bit keys) which
// is far finer than any partitioning this repository produces.
const DefaultOrder = 16

// Encode maps integer coordinates (each < 2^order) to their Hilbert index.
// It panics if order is out of range or a coordinate overflows the order, as
// those are programming errors, not data errors.
func Encode(order int, x, y, z uint32) uint64 {
	checkOrder(order)
	limit := uint32(1) << uint(order)
	if x >= limit || y >= limit || z >= limit {
		panic(fmt.Sprintf("hilbert: coordinate (%d,%d,%d) exceeds order %d", x, y, z, order))
	}
	X := [3]uint32{x, y, z}
	axesToTranspose(&X, order)
	return interleave(X, order)
}

// Decode maps a Hilbert index back to its integer coordinates. It is the
// exact inverse of Encode for the same order.
func Decode(order int, h uint64) (x, y, z uint32) {
	checkOrder(order)
	X := deinterleave(h, order)
	transposeToAxes(&X, order)
	return X[0], X[1], X[2]
}

func checkOrder(order int) {
	if order < 1 || order > MaxOrder {
		panic(fmt.Sprintf("hilbert: order %d out of range [1,%d]", order, MaxOrder))
	}
}

// axesToTranspose converts coordinates into the "transpose" form of the
// Hilbert index, following Skilling's algorithm.
func axesToTranspose(X *[3]uint32, order int) {
	M := uint32(1) << uint(order-1)
	// Inverse undo excess work.
	for Q := M; Q > 1; Q >>= 1 {
		P := Q - 1
		for i := 0; i < 3; i++ {
			if X[i]&Q != 0 {
				X[0] ^= P // invert
			} else {
				t := (X[0] ^ X[i]) & P
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < 3; i++ {
		X[i] ^= X[i-1]
	}
	var t uint32
	for Q := M; Q > 1; Q >>= 1 {
		if X[2]&Q != 0 {
			t ^= Q - 1
		}
	}
	for i := 0; i < 3; i++ {
		X[i] ^= t
	}
}

// transposeToAxes is the inverse of axesToTranspose.
func transposeToAxes(X *[3]uint32, order int) {
	N := uint32(2) << uint(order-1)
	// Gray decode by H ^ (H/2).
	t := X[2] >> 1
	for i := 2; i > 0; i-- {
		X[i] ^= X[i-1]
	}
	X[0] ^= t
	// Undo excess work.
	for Q := uint32(2); Q != N; Q <<= 1 {
		P := Q - 1
		for i := 2; i >= 0; i-- {
			if X[i]&Q != 0 {
				X[0] ^= P
			} else {
				t := (X[0] ^ X[i]) & P
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
}

// interleave packs the transpose form into a single index: bit (order-1) of
// X[0] is the most significant index bit, followed by bit (order-1) of X[1],
// X[2], then bit (order-2) of X[0], and so on.
func interleave(X [3]uint32, order int) uint64 {
	var h uint64
	for bit := order - 1; bit >= 0; bit-- {
		for i := 0; i < 3; i++ {
			h = h<<1 | uint64(X[i]>>uint(bit)&1)
		}
	}
	return h
}

// deinterleave is the inverse of interleave.
func deinterleave(h uint64, order int) [3]uint32 {
	var X [3]uint32
	shift := uint(3*order - 1)
	for bit := order - 1; bit >= 0; bit-- {
		for i := 0; i < 3; i++ {
			X[i] |= uint32(h>>shift&1) << uint(bit)
			shift--
		}
	}
	return X
}

// Mapper quantizes points of a world box onto the integer grid of a Hilbert
// curve and returns their curve index. Points outside the world are clamped
// to its boundary, so a Mapper never panics on slightly protruding data.
type Mapper struct {
	world geom.Box
	order int
	scale [3]float64
}

// NewMapper builds a Mapper over the given world box. A degenerate world
// extent in some dimension maps every coordinate of that dimension to zero.
func NewMapper(world geom.Box, order int) *Mapper {
	checkOrder(order)
	m := &Mapper{world: world, order: order}
	cells := float64(uint64(1) << uint(order))
	for d := 0; d < geom.Dims; d++ {
		side := world.Side(d)
		if side > 0 {
			m.scale[d] = cells / side
		}
	}
	return m
}

// Order returns the curve order of the mapper.
func (m *Mapper) Order() int { return m.order }

// World returns the world box of the mapper.
func (m *Mapper) World() geom.Box { return m.world }

// Cell returns the integer grid coordinates of p, clamped into range.
func (m *Mapper) Cell(p geom.Point) (x, y, z uint32) {
	var c [3]uint32
	limit := uint64(1)<<uint(m.order) - 1
	for d := 0; d < geom.Dims; d++ {
		v := (p[d] - m.world.Lo[d]) * m.scale[d]
		switch {
		case v <= 0 || v != v: // also catches NaN
			c[d] = 0
		case uint64(v) >= limit:
			c[d] = uint32(limit)
		default:
			c[d] = uint32(v)
		}
	}
	return c[0], c[1], c[2]
}

// Value returns the Hilbert index of the grid cell containing p.
func (m *Mapper) Value(p geom.Point) uint64 {
	x, y, z := m.Cell(p)
	return Encode(m.order, x, y, z)
}
