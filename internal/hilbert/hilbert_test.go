package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestEncodeOrder1CoversAllCells(t *testing.T) {
	seen := make(map[uint64][3]uint32)
	for x := uint32(0); x < 2; x++ {
		for y := uint32(0); y < 2; y++ {
			for z := uint32(0); z < 2; z++ {
				h := Encode(1, x, y, z)
				if h > 7 {
					t.Fatalf("order-1 index %d out of range for (%d,%d,%d)", h, x, y, z)
				}
				if prev, dup := seen[h]; dup {
					t.Fatalf("index %d assigned to both %v and (%d,%d,%d)", h, prev, x, y, z)
				}
				seen[h] = [3]uint32{x, y, z}
			}
		}
	}
	if len(seen) != 8 {
		t.Fatalf("expected 8 distinct cells, got %d", len(seen))
	}
}

func TestEncodeStartsAtOrigin(t *testing.T) {
	for order := 1; order <= 8; order++ {
		if h := Encode(order, 0, 0, 0); h != 0 {
			t.Fatalf("order %d: Encode(0,0,0) = %d, want 0", order, h)
		}
	}
}

func TestDecodeInverseExhaustiveSmall(t *testing.T) {
	const order = 3 // 512 cells
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			for z := uint32(0); z < 8; z++ {
				h := Encode(order, x, y, z)
				gx, gy, gz := Decode(order, h)
				if gx != x || gy != y || gz != z {
					t.Fatalf("Decode(Encode(%d,%d,%d)) = (%d,%d,%d)", x, y, z, gx, gy, gz)
				}
			}
		}
	}
}

func TestCurveContinuity(t *testing.T) {
	// Consecutive Hilbert indexes must decode to cells at Manhattan
	// distance exactly 1: this is the defining locality property the
	// adaptive walk relies on.
	const order = 4
	px, py, pz := Decode(order, 0)
	total := uint64(1) << (3 * order)
	for h := uint64(1); h < total; h++ {
		x, y, z := Decode(order, h)
		d := absDiff(x, px) + absDiff(y, py) + absDiff(z, pz)
		if d != 1 {
			t.Fatalf("step %d: cells (%d,%d,%d)->(%d,%d,%d) Manhattan distance %d, want 1",
				h, px, py, pz, x, y, z, d)
		}
		px, py, pz = x, y, z
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		order := 1 + r.Intn(MaxOrder)
		mask := uint32(1)<<uint(order) - 1
		x, y, z := r.Uint32()&mask, r.Uint32()&mask, r.Uint32()&mask
		h := Encode(order, x, y, z)
		gx, gy, gz := Decode(order, h)
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropIndexWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		order := 1 + r.Intn(MaxOrder)
		mask := uint32(1)<<uint(order) - 1
		h := Encode(order, r.Uint32()&mask, r.Uint32()&mask, r.Uint32()&mask)
		if order == MaxOrder {
			return true // 63 bits: any uint64 below 2^63 is fine
		}
		return h < uint64(1)<<uint(3*order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodePanicsOnBadInput(t *testing.T) {
	assertPanics(t, "order 0", func() { Encode(0, 0, 0, 0) })
	assertPanics(t, "order too large", func() { Encode(MaxOrder+1, 0, 0, 0) })
	assertPanics(t, "coordinate overflow", func() { Encode(2, 4, 0, 0) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestMapperClampsOutOfWorld(t *testing.T) {
	world := geom.Box{Lo: geom.Point{0, 0, 0}, Hi: geom.Point{100, 100, 100}}
	m := NewMapper(world, 8)
	x, y, z := m.Cell(geom.Point{-5, 50, 200})
	if x != 0 {
		t.Fatalf("below-world x should clamp to 0, got %d", x)
	}
	if z != 255 {
		t.Fatalf("above-world z should clamp to 255, got %d", z)
	}
	if y == 0 || y == 255 {
		t.Fatalf("interior y should not clamp, got %d", y)
	}
}

func TestMapperLocality(t *testing.T) {
	// Points close in space should have closer Hilbert values, on average,
	// than points far apart. Compare mean |Δh| of near pairs vs far pairs.
	world := geom.Box{Lo: geom.Point{0, 0, 0}, Hi: geom.Point{1000, 1000, 1000}}
	m := NewMapper(world, 10)
	r := rand.New(rand.NewSource(42))
	var nearSum, farSum float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		p := geom.Point{r.Float64() * 1000, r.Float64() * 1000, r.Float64() * 1000}
		near := p.Add(geom.Point{r.Float64()*2 - 1, r.Float64()*2 - 1, r.Float64()*2 - 1})
		far := geom.Point{r.Float64() * 1000, r.Float64() * 1000, r.Float64() * 1000}
		hp := float64(m.Value(p))
		nearSum += abs(hp - float64(m.Value(near)))
		farSum += abs(hp - float64(m.Value(far)))
	}
	if nearSum >= farSum/10 {
		t.Fatalf("locality too weak: near mean %g vs far mean %g", nearSum/trials, farSum/trials)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestMapperDegenerateWorld(t *testing.T) {
	world := geom.Box{Lo: geom.Point{5, 0, 0}, Hi: geom.Point{5, 10, 10}} // zero x extent
	m := NewMapper(world, 4)
	x, _, _ := m.Cell(geom.Point{5, 5, 5})
	if x != 0 {
		t.Fatalf("degenerate dimension should map to 0, got %d", x)
	}
}

func BenchmarkEncodeOrder16(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const mask = 1<<16 - 1
	xs := make([][3]uint32, 1024)
	for i := range xs {
		xs[i] = [3]uint32{r.Uint32() & mask, r.Uint32() & mask, r.Uint32() & mask}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := xs[i%len(xs)]
		Encode(16, c[0], c[1], c[2])
	}
}
