package transformers

import "fmt"

// Distance joins. §VIII of the paper notes that "distance join approaches
// can be trivially implemented as a variation of a spatial join (by
// enlarging the objects by the distance predicate)". This file provides
// that variation: each side's boxes are enlarged by half the distance, so
// two elements join exactly when their boxes come within the given distance
// of each other under the Chebyshev (per-axis) metric — the natural metric
// for MBB filtering, and an upper bound for the Euclidean predicate a
// refinement step would verify.

// ExpandForDistance returns a copy of elems with every box grown by d/2 on
// each side. Joining two datasets expanded this way reports exactly the
// pairs whose original boxes are within Chebyshev distance d.
func ExpandForDistance(elems []Element, d float64) ([]Element, error) {
	if d < 0 {
		return nil, fmt.Errorf("transformers: negative distance %v", d)
	}
	out := make([]Element, len(elems))
	for i, e := range elems {
		out[i] = Element{ID: e.ID, Box: e.Box.Expand(d / 2)}
	}
	return out, nil
}

// DistanceJoin finds every pair of elements (a from as, b from bs) whose
// boxes are within Chebyshev distance d of each other, using the given
// algorithm end to end. It is the enlarged-objects spatial join of §VIII.
func DistanceJoin(alg Algorithm, as, bs []Element, d float64, opt RunOptions) (*RunReport, error) {
	ea, err := ExpandForDistance(as, d)
	if err != nil {
		return nil, err
	}
	eb, err := ExpandForDistance(bs, d)
	if err != nil {
		return nil, err
	}
	return Run(alg, ea, eb, opt)
}
