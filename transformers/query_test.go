package transformers

import (
	"sync"
	"testing"
)

func box3(lo, hi Point) Box { return Box{Lo: lo, Hi: hi} }

func naiveRangeScan(elems []Element, q Box) []Element {
	var out []Element
	for _, e := range elems {
		if e.Box.Intersects(q) {
			out = append(out, e)
		}
	}
	return out
}

func TestRangeQueryFacade(t *testing.T) {
	dists := []struct {
		name  string
		elems []Element
	}{
		{"uniform", GenerateUniform(4000, 41)},
		{"clustered", GenerateDenseCluster(4000, 42)},
		{"skewed", GenerateMassiveCluster(4000, 43)},
	}
	queries := []Box{
		box3(Point{100, 100, 100}, Point{200, 220, 180}),
		box3(Point{480, 480, 480}, Point{520, 520, 520}),
		World(),
		box3(Point{-100, -100, -100}, Point{-50, -50, -50}),
	}
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			idx, err := BuildIndex(append([]Element(nil), d.elems...), IndexOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				got, rs, err := idx.RangeQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				want := naiveRangeScan(d.elems, q)
				if len(got) != len(want) || rs.Results != len(want) {
					t.Fatalf("query %d: got %d (stats %d), want %d", qi, len(got), rs.Results, len(want))
				}
			}
		})
	}
}

func TestProbeFacade(t *testing.T) {
	elems := GenerateUniform(3000, 44)
	idx, err := BuildIndex(append([]Element(nil), elems...), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := elems[123].Box.Center()
	got, _, err := idx.Probe(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range got {
		if !e.Box.ContainsPoint(p) {
			t.Fatalf("probe returned non-containing element %d", e.ID)
		}
		if e.ID == elems[123].ID {
			found = true
		}
	}
	if !found {
		t.Fatal("probe missed the element whose center was probed")
	}
}

// TestConcurrentJoinsSharedIndex is the serving-layer contract: many joins
// and range queries over the same built indexes at once (Concurrent option),
// verified under -race by CI.
func TestConcurrentJoinsSharedIndex(t *testing.T) {
	a := GenerateUniform(2000, 45)
	b := GenerateDenseCluster(2000, 46)
	ia, err := BuildIndex(append([]Element(nil), a...), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ib, err := BuildIndex(append([]Element(nil), b...), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Join(ia, ib, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := Join(ia, ib, JoinOptions{Concurrent: true, Parallelism: 1 + w%2})
			if err != nil {
				t.Error(err)
				return
			}
			if res.Stats.Results != ref.Stats.Results {
				t.Errorf("worker %d: %d results, want %d", w, res.Stats.Results, ref.Stats.Results)
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := ia.RangeQuery(box3(Point{200, 200, 200}, Point{400, 400, 400})); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
