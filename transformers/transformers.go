// Package transformers is the public API of this repository: a Go
// implementation of TRANSFORMERS (Pavlovic et al., ICDE 2016), the robust
// disk-based spatial join that adapts its join strategy and data layout at
// runtime to local density variations, together with the three baselines the
// paper evaluates against (PBSM, synchronized R-tree, GIPSY).
//
// # Quickstart
//
//	a := transformers.GenerateUniform(100_000, 1)
//	b := transformers.GenerateUniform(100_000, 2)
//	ia, _ := transformers.BuildIndex(a, transformers.IndexOptions{})
//	ib, _ := transformers.BuildIndex(b, transformers.IndexOptions{})
//	res, _ := transformers.Join(ia, ib, transformers.JoinOptions{})
//	fmt.Println(len(res.Pairs), "intersecting pairs")
//
// Indexes are built once per dataset and can be reused across joins with any
// other indexed dataset — the adaptivity lives in the join, not in the
// partitioning (paper §III).
//
// For cross-algorithm comparisons (the paper's experiments), use Run, which
// executes any Algorithm end to end on raw elements and returns uniform cost
// reports.
package transformers

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/storage"
)

// Re-exported geometry types: the spatial join vocabulary.
type (
	// Point is a location in 3D space.
	Point = geom.Point
	// Box is an axis-aligned 3D box (an MBB).
	Box = geom.Box
	// Element is a spatial element: an application object approximated by
	// its MBB, carrying an application-defined ID.
	Element = geom.Element
	// Pair is one join result: the IDs of two intersecting elements, A
	// always from the first dataset of the join.
	Pair = geom.Pair
)

// IndexOptions controls TRANSFORMERS index construction.
type IndexOptions struct {
	// PageSize is the disk page size in bytes; 8KB when zero (§VII-A).
	PageSize int
	// UnitCapacity caps elements per space unit; page capacity when zero.
	UnitCapacity int
	// NodeCapacity caps space units per space node; descriptor-page
	// capacity when zero.
	NodeCapacity int
	// World bounds the partition regions; the dataset MBB when zero. Give
	// all indexes that will be joined the same world for best walk
	// behaviour (not required for correctness).
	World Box
	// Store overrides the backing page store (e.g. a storage.FileStore);
	// an in-memory simulated disk when nil.
	Store storage.Store
}

// Index is an indexed dataset ready for TRANSFORMERS joins.
type Index struct {
	core  *core.Index
	store storage.Store
	build BuildReport
}

// BuildReport describes the cost and shape of an index build.
type BuildReport struct {
	// Elements is the dataset size.
	Elements int
	// Units and Nodes count the hierarchy (§IV).
	Units, Nodes int
	// Wall is the elapsed build time (in-memory work).
	Wall time.Duration
	// IO is the build's storage traffic.
	IO storage.Stats
	// ModeledIOTime prices IO on the default disk model.
	ModeledIOTime time.Duration
}

// BuildIndex indexes a dataset for TRANSFORMERS joins. The input slice is
// reordered in place (STR order).
func BuildIndex(elems []Element, opt IndexOptions) (*Index, error) {
	st := opt.Store
	if st == nil {
		st = storage.NewMemStore(opt.PageSize)
	}
	idx, bs, err := core.BuildIndex(st, elems, core.IndexConfig{
		UnitCapacity: opt.UnitCapacity,
		NodeCapacity: opt.NodeCapacity,
		World:        opt.World,
	})
	if err != nil {
		return nil, fmt.Errorf("transformers: build index: %w", err)
	}
	return &Index{
		core:  idx,
		store: st,
		build: BuildReport{
			Elements:      idx.Len(),
			Units:         idx.Units(),
			Nodes:         idx.Nodes(),
			Wall:          bs.Wall,
			IO:            bs.IO,
			ModeledIOTime: storage.DefaultDiskModel().IOTime(bs.IO),
		},
	}, nil
}

// BuildReport returns the index build report.
func (idx *Index) BuildReport() BuildReport { return idx.build }

// Core exposes the underlying core index, so the serving layer can hand
// catalog-built indexes to the engine registry (engine.Options.Prebuilt)
// without rebuilding them per request.
func (idx *Index) Core() *core.Index { return idx.core }

// Len returns the number of indexed elements.
func (idx *Index) Len() int { return idx.core.Len() }

// JoinOptions controls a TRANSFORMERS join.
type JoinOptions struct {
	// DisableTransforms runs the static (No-TR) variant of §VII-D1.
	DisableTransforms bool
	// TSU and TSO override the initial transformation thresholds (defaults
	// 8 and 27, §VII-D2); FixedThresholds disables runtime recalibration.
	TSU, TSO        float64
	FixedThresholds bool
	// GuideB starts exploration with dataset B as the guide.
	GuideB bool
	// Disk prices page I/O for the cost model and the report;
	// storage.DefaultDiskModel() when zero.
	Disk storage.DiskModel
	// CachePages sizes the per-dataset buffer pool of the join; 256 when
	// zero.
	CachePages int
	// DiscardPairs skips collecting result pairs (benchmarks that only
	// need counts).
	DiscardPairs bool
	// OnPair, when set, streams each result pair; pairs are still
	// collected unless DiscardPairs is set.
	OnPair func(a, b Element)
	// Parallelism sets the number of worker goroutines of the join. 0 or 1
	// run the single-threaded, paper-faithful algorithm (the default, so
	// reproduction numbers stay comparable to the paper); values > 1 split
	// the pivot nodes into contiguous Hilbert-order chunks processed
	// concurrently, and a negative value uses runtime.GOMAXPROCS(0). The
	// result pair set is identical at every setting. With more than one
	// worker, pair collection and OnPair delivery are serialized internally,
	// so OnPair never runs concurrently with itself.
	Parallelism int
	// Concurrent marks the indexes as shared with other goroutines: page
	// reads then go through private reader views so several joins (and
	// range queries) may run on the same indexes simultaneously. Results
	// are identical. The serving layer sets this on every join.
	Concurrent bool
}

// JoinResult is the outcome of a join.
type JoinResult struct {
	// Pairs lists the intersecting element ID pairs (nil with
	// JoinOptions.DiscardPairs).
	Pairs []Pair
	// Stats exposes the full cost counters of the run.
	Stats core.JoinStats
	// ModeledIOTime prices the join's I/O on the configured disk model;
	// TotalTime = Stats.Wall + ModeledIOTime approximates the paper's
	// disk-based join time.
	ModeledIOTime time.Duration
	TotalTime     time.Duration
}

// serializeEmit adapts an emit callback to the join's parallelism: workers
// emit concurrently, so a consuming callback is serialized behind a mutex
// and a non-consuming one is replaced by a lock-free no-op. Single-threaded
// joins pass through untouched.
func serializeEmit(parallelism int, consumes bool, emit func(a, b Element)) func(a, b Element) {
	if parallelism >= 0 && parallelism <= 1 {
		return emit
	}
	if !consumes {
		return func(Element, Element) {}
	}
	var mu sync.Mutex
	return func(x, y Element) {
		mu.Lock()
		emit(x, y)
		mu.Unlock()
	}
}

// Join runs the TRANSFORMERS adaptive-exploration join between two indexed
// datasets. Every intersecting pair is reported exactly once, with Pair.A
// from index a and Pair.B from index b.
func Join(a, b *Index, opt JoinOptions) (*JoinResult, error) {
	res := &JoinResult{}
	emit := serializeEmit(opt.Parallelism, !opt.DiscardPairs || opt.OnPair != nil,
		func(x, y Element) {
			if !opt.DiscardPairs {
				res.Pairs = append(res.Pairs, Pair{A: x.ID, B: y.ID})
			}
			if opt.OnPair != nil {
				opt.OnPair(x, y)
			}
		})
	stats, err := core.Join(a.core, b.core, core.JoinConfig{
		DisableTransforms: opt.DisableTransforms,
		TSU:               opt.TSU,
		TSO:               opt.TSO,
		FixedThresholds:   opt.FixedThresholds,
		GuideB:            opt.GuideB,
		Disk:              opt.Disk,
		CachePages:        opt.CachePages,
		Parallelism:       opt.Parallelism,
		Concurrent:        opt.Concurrent,
	}, emit)
	if err != nil {
		return nil, fmt.Errorf("transformers: join: %w", err)
	}
	res.Stats = stats
	disk := opt.Disk
	if disk == (storage.DiskModel{}) {
		disk = storage.DefaultDiskModel()
	}
	res.ModeledIOTime = disk.IOTime(stats.IO)
	res.TotalTime = stats.Wall + res.ModeledIOTime
	return res, nil
}

// World returns the default synthetic evaluation space (1000^3).
func World() Box { return datagen.DefaultWorld() }

// GenerateUniform returns n uniformly distributed box elements in the
// default world (§VII-B), deterministically from seed.
func GenerateUniform(n int, seed int64) []Element {
	return datagen.Uniform(datagen.Config{N: n, Seed: seed})
}

// GenerateDenseCluster returns the DenseCluster distribution of §VII-B.
func GenerateDenseCluster(n int, seed int64) []Element {
	return datagen.DenseCluster(datagen.Config{N: n, Seed: seed})
}

// GenerateUniformCluster returns the UniformCluster distribution of §VII-B.
func GenerateUniformCluster(n int, seed int64) []Element {
	return datagen.UniformCluster(datagen.Config{N: n, Seed: seed})
}

// GenerateMassiveCluster returns the MassiveCluster distribution of §VII-B.
func GenerateMassiveCluster(n int, seed int64) []Element {
	return datagen.MassiveCluster(datagen.Config{N: n, Seed: seed})
}

// GenerateAxons returns n axon cylinder segments of the neuroscience-like
// workload (§II-B, §VII-B), biased to the top of the volume.
func GenerateAxons(n int, seed int64) []Element {
	return datagen.Neuroscience(datagen.NeuroConfig{N: n, Seed: seed, Kind: datagen.Axon})
}

// GenerateDendrites returns n dendrite cylinder segments, biased to the
// bottom of the volume.
func GenerateDendrites(n int, seed int64) []Element {
	return datagen.Neuroscience(datagen.NeuroConfig{N: n, Seed: seed, Kind: datagen.Dendrite})
}
