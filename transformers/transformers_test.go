package transformers

import (
	"testing"

	"repro/internal/naive"
)

func TestBuildAndJoinQuickstart(t *testing.T) {
	a := GenerateUniform(3000, 1)
	b := GenerateUniform(3000, 2)
	want := naive.Join(a, b)

	ia, err := BuildIndex(append([]Element(nil), a...), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ib, err := BuildIndex(append([]Element(nil), b...), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ia.Len() != 3000 {
		t.Fatalf("Len = %d", ia.Len())
	}
	br := ia.BuildReport()
	if br.Units == 0 || br.Nodes == 0 || br.IO.Writes == 0 {
		t.Fatalf("build report incomplete: %+v", br)
	}

	res, err := Join(ia, ib, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(res.Pairs, want) {
		t.Fatalf("facade join disagrees with naive: %d vs %d", len(res.Pairs), len(want))
	}
	if res.TotalTime < res.ModeledIOTime {
		t.Fatalf("total time %v < modeled IO %v", res.TotalTime, res.ModeledIOTime)
	}
}

func TestJoinDiscardAndStream(t *testing.T) {
	a := GenerateUniform(500, 3)
	b := GenerateUniform(500, 4)
	ia, err := BuildIndex(a, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ib, err := BuildIndex(b, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	res, err := Join(ia, ib, JoinOptions{DiscardPairs: true, OnPair: func(Element, Element) { streamed++ }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != nil {
		t.Fatal("DiscardPairs should not collect")
	}
	if uint64(streamed) != res.Stats.Results {
		t.Fatalf("streamed %d of %d results", streamed, res.Stats.Results)
	}
}

func TestRunAllAlgorithmsAgree(t *testing.T) {
	a := GenerateDenseCluster(1500, 5)
	b := GenerateUniformCluster(1500, 6)
	var reference []Pair
	for _, alg := range append(Algorithms(), AlgoNaive) {
		rep, err := Run(alg, append([]Element(nil), a...), append([]Element(nil), b...),
			RunOptions{CollectPairs: true})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if reference == nil {
			reference = rep.Pairs
			continue
		}
		if !naive.Equal(rep.Pairs, reference) {
			t.Fatalf("%s disagrees: %d vs %d pairs", alg, len(rep.Pairs), len(reference))
		}
	}
}

// TestCrossAlgorithmConsistency asserts all four disk-based algorithms
// report the naive pair count on clustered and on skewed generated data —
// the distributions whose non-uniformity the paper targets, and where
// partition-boundary bugs (duplicates, missed pairs) would show up first.
func TestCrossAlgorithmConsistency(t *testing.T) {
	workloads := []struct {
		name string
		a, b []Element
	}{
		{"clustered", GenerateDenseCluster(2000, 201), GenerateDenseCluster(2000, 202)},
		{"skewed", GenerateMassiveCluster(2000, 203), GenerateUniform(2000, 204)},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			want := uint64(len(naive.Join(w.a, w.b)))
			for _, alg := range Algorithms() {
				rep, err := Run(alg, append([]Element(nil), w.a...), append([]Element(nil), w.b...), RunOptions{})
				if err != nil {
					t.Fatalf("%s: %v", alg, err)
				}
				if rep.Results != want {
					t.Errorf("%s on %s: %d results, naive reports %d", alg, w.name, rep.Results, want)
				}
			}
		})
	}
}

func TestRunGipsyOrientsPairs(t *testing.T) {
	// GIPSY internally swaps sparse/dense; Run must restore A/B order.
	sparse := GenerateUniform(40, 7)
	dense := GenerateUniform(3000, 8)
	want := naive.Join(dense, sparse) // dense passed as A
	rep, err := Run(AlgoGIPSY, append([]Element(nil), dense...), append([]Element(nil), sparse...),
		RunOptions{CollectPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(rep.Pairs, want) {
		t.Fatal("gipsy orientation wrong")
	}
}

func TestRunReportsCosts(t *testing.T) {
	a := GenerateUniform(2000, 9)
	b := GenerateUniform(2000, 10)
	// Inflate the boxes so the workload produces results to count (2000
	// unit-sized boxes in a 1000^3 world intersect essentially never).
	for i := range a {
		a[i].Box = a[i].Box.Expand(15)
	}
	for i := range b {
		b[i].Box = b[i].Box.Expand(15)
	}
	for _, alg := range Algorithms() {
		rep, err := Run(alg, append([]Element(nil), a...), append([]Element(nil), b...), RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if rep.BuildIO.Writes == 0 {
			t.Errorf("%s: no build writes reported", alg)
		}
		if rep.JoinIO.Reads == 0 {
			t.Errorf("%s: no join reads reported", alg)
		}
		if rep.Comparisons == 0 {
			t.Errorf("%s: no comparisons reported", alg)
		}
		if rep.JoinTotal < rep.JoinIOTime {
			t.Errorf("%s: join total < IO time", alg)
		}
		if rep.Results == 0 {
			t.Errorf("%s: no results on overlapping data", alg)
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if _, err := Run("nope", nil, nil, RunOptions{}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestGenerators(t *testing.T) {
	if n := len(GenerateAxons(1000, 1)); n != 1000 {
		t.Fatalf("axons: %d", n)
	}
	if n := len(GenerateDendrites(1000, 1)); n != 1000 {
		t.Fatalf("dendrites: %d", n)
	}
	if n := len(GenerateMassiveCluster(1000, 1)); n != 1000 {
		t.Fatalf("massive: %d", n)
	}
	if World().Volume() != 1e9 {
		t.Fatalf("world volume: %v", World().Volume())
	}
}

func TestJoinParallelism(t *testing.T) {
	a := GenerateUniform(4000, 5)
	b := GenerateMassiveCluster(4000, 6)
	want := naive.Join(a, b)
	ia, err := BuildIndex(append([]Element(nil), a...), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ib, err := BuildIndex(append([]Element(nil), b...), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Join(ia, ib, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 2, 8} {
		streamed := 0
		res, err := Join(ia, ib, JoinOptions{
			Parallelism: workers,
			OnPair:      func(Element, Element) { streamed++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		if !naive.Equal(append([]Pair(nil), res.Pairs...), want) {
			t.Fatalf("Parallelism=%d disagrees with naive", workers)
		}
		if res.Stats.Results != seq.Stats.Results {
			t.Fatalf("Parallelism=%d Results=%d, sequential=%d", workers, res.Stats.Results, seq.Stats.Results)
		}
		// OnPair delivery is serialized, so the plain counter is exact.
		if uint64(streamed) != res.Stats.Results {
			t.Fatalf("Parallelism=%d streamed %d of %d", workers, streamed, res.Stats.Results)
		}
	}

	// Run facade: parallel pair collection matches too.
	rep, err := Run(AlgoTransformers,
		append([]Element(nil), a...), append([]Element(nil), b...),
		RunOptions{CollectPairs: true, Join: JoinOptions{Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(append([]Pair(nil), rep.Pairs...), want) {
		t.Fatal("Run with Parallelism=4 disagrees with naive")
	}
}
