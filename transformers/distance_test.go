package transformers

import (
	"math"
	"testing"

	"repro/internal/naive"
)

// chebDist computes the Chebyshev (max per-axis gap) distance of two boxes.
func chebDist(a, b Box) float64 {
	var worst float64
	for d := 0; d < 3; d++ {
		var gap float64
		switch {
		case b.Lo[d] > a.Hi[d]:
			gap = b.Lo[d] - a.Hi[d]
		case a.Lo[d] > b.Hi[d]:
			gap = a.Lo[d] - b.Hi[d]
		}
		if gap > worst {
			worst = gap
		}
	}
	return worst
}

func TestDistanceJoinMatchesPredicate(t *testing.T) {
	a := GenerateUniform(800, 31)
	b := GenerateUniform(800, 32)
	const d = 25.0
	// Reference: all pairs within Chebyshev distance d.
	var want []Pair
	for _, x := range a {
		for _, y := range b {
			if chebDist(x.Box, y.Box) <= d {
				want = append(want, Pair{A: x.ID, B: y.ID})
			}
		}
	}
	for _, alg := range []Algorithm{AlgoTransformers, AlgoPBSM} {
		rep, err := DistanceJoin(alg, a, b, d, RunOptions{CollectPairs: true})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !naive.Equal(rep.Pairs, append([]Pair(nil), want...)) {
			t.Fatalf("%s distance join: %d pairs, want %d", alg, len(rep.Pairs), len(want))
		}
	}
}

func TestDistanceJoinZeroIsPlainJoin(t *testing.T) {
	a := GenerateDenseCluster(600, 33)
	b := GenerateDenseCluster(600, 34)
	plain, err := Run(AlgoTransformers, append([]Element(nil), a...), append([]Element(nil), b...),
		RunOptions{CollectPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := DistanceJoin(AlgoTransformers, a, b, 0, RunOptions{CollectPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(plain.Pairs, dist.Pairs) {
		t.Fatal("distance 0 should equal the plain join")
	}
}

func TestDistanceJoinMonotone(t *testing.T) {
	a := GenerateUniform(400, 35)
	b := GenerateUniform(400, 36)
	prev := -1
	for _, d := range []float64{0, 10, 50, 200} {
		rep, err := DistanceJoin(AlgoTransformers, a, b, d, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if int(rep.Results) < prev {
			t.Fatalf("result count must grow with distance: %d after %d at d=%v",
				rep.Results, prev, d)
		}
		prev = int(rep.Results)
	}
	if prev == 0 {
		t.Fatal("largest radius found nothing")
	}
}

func TestExpandForDistanceValidation(t *testing.T) {
	if _, err := ExpandForDistance(nil, -1); err == nil {
		t.Fatal("negative distance should fail")
	}
	out, err := ExpandForDistance([]Element{{ID: 1, Box: Box{Lo: Point{0, 0, 0}, Hi: Point{1, 1, 1}}}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0].Box.Lo[0]+2) > 1e-12 || math.Abs(out[0].Box.Hi[0]-3) > 1e-12 {
		t.Fatalf("expanded box wrong: %v", out[0].Box)
	}
}
