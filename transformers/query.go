package transformers

import (
	"fmt"

	"repro/internal/core"
)

// RangeStats reports the cost of one range or probe query (walk steps,
// descriptor tests, pages read, I/O counters, wall time).
type RangeStats = core.RangeStats

// RangeQuery returns every indexed element whose box intersects query
// (touch-inclusive, the same predicate the join uses). The index machinery —
// Hilbert walk start, adaptive walk, neighborhood crawl — reads only the
// space-unit pages whose MBBs can contribute, so a built index answers
// selections as well as joins.
//
// RangeQuery is safe to call from any number of goroutines concurrently, and
// concurrently with Concurrent joins on the same index: every call uses
// private walker state and a private storage reader view.
func (idx *Index) RangeQuery(query Box) ([]Element, RangeStats, error) {
	elems, rs, err := idx.core.RangeQuery(query, nil)
	if err != nil {
		return nil, rs, fmt.Errorf("transformers: range query: %w", err)
	}
	return elems, rs, nil
}

// Probe returns every indexed element whose box contains the point p
// (boundary-inclusive): a range query with a degenerate box.
func (idx *Index) Probe(p Point) ([]Element, RangeStats, error) {
	elems, rs, err := idx.core.ProbeQuery(p, nil)
	if err != nil {
		return nil, rs, fmt.Errorf("transformers: probe: %w", err)
	}
	return elems, rs, nil
}
