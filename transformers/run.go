package transformers

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/gipsy"
	"repro/internal/grid"
	"repro/internal/naive"
	"repro/internal/pbsm"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Algorithm selects a spatial join implementation for Run.
type Algorithm string

// The four disk-based algorithms of the paper's evaluation plus the naive
// nested loop reference.
const (
	// AlgoTransformers is the paper's contribution (§III–§VI).
	AlgoTransformers Algorithm = "transformers"
	// AlgoPBSM is the Partition Based Spatial-Merge join [3].
	AlgoPBSM Algorithm = "pbsm"
	// AlgoRTree is the synchronized R-tree traversal [2] over STR-bulkloaded
	// trees [10].
	AlgoRTree Algorithm = "rtree"
	// AlgoGIPSY is the crawling join for contrasting densities [4]. Run
	// uses the smaller dataset as the (required) predetermined sparse side.
	AlgoGIPSY Algorithm = "gipsy"
	// AlgoNaive is the O(|A|·|B|) nested loop (reference/testing only).
	AlgoNaive Algorithm = "naive"
)

// Algorithms lists the disk-based algorithms in the paper's evaluation
// order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoTransformers, AlgoPBSM, AlgoRTree, AlgoGIPSY}
}

// RunOptions configures an end-to-end Run.
type RunOptions struct {
	// PageSize is the disk page size; 8KB when zero.
	PageSize int
	// World bounds partitioning for all algorithms; union of the dataset
	// MBBs when zero. PBSM requires it to cover both datasets.
	World Box
	// Disk prices I/O; storage.DefaultDiskModel() when zero.
	Disk storage.DiskModel
	// PBSMTilesPerDim sets PBSM's tile grid resolution (10 in the paper's
	// synthetic experiments, 20 for neuroscience data); 10 when zero.
	PBSMTilesPerDim int
	// RTreeFanout caps R-tree node fanout; page capacity when zero.
	RTreeFanout int
	// Join forwards TRANSFORMERS-specific knobs.
	Join JoinOptions
	// CollectPairs returns the result pairs in the report (costs memory on
	// big joins; counts are always reported).
	CollectPairs bool
}

// RunReport is the uniform cost report of one end-to-end Run, with the
// paper's three join-phase metrics (join time split into in-memory time and
// modeled I/O time, and the number of intersection tests) plus indexing
// cost.
type RunReport struct {
	Algorithm Algorithm

	// Indexing phase.
	BuildWall    time.Duration
	BuildIO      storage.Stats
	BuildIOTime  time.Duration // modeled
	BuildTotal   time.Duration // BuildWall + BuildIOTime
	IndexedPages int

	// Join phase.
	JoinWall    time.Duration // in-memory join time
	JoinIO      storage.Stats
	JoinIOTime  time.Duration // modeled
	JoinTotal   time.Duration // JoinWall + JoinIOTime
	Comparisons uint64        // element-element intersection tests
	MetaComps   uint64        // metadata comparisons (descriptor/node tests)
	Results     uint64

	// TRANSFORMERS-specific detail (zero for other algorithms).
	Transformers core.JoinStats

	// Pairs is populated only with RunOptions.CollectPairs.
	Pairs []Pair
}

// Run executes one algorithm end to end (index both datasets, join them) on
// an in-memory simulated disk and reports uniform cost metrics. The input
// slices are reordered in place by the partitioning algorithms.
func Run(alg Algorithm, a, b []Element, opt RunOptions) (*RunReport, error) {
	world := opt.World
	if !world.Valid() || world.Volume() == 0 {
		world = geom.MBBOf(a).Union(geom.MBBOf(b))
	}
	disk := opt.Disk
	if disk == (storage.DiskModel{}) {
		disk = storage.DefaultDiskModel()
	}
	rep := &RunReport{Algorithm: alg}
	emit := func(x, y Element) {
		if opt.CollectPairs {
			rep.Pairs = append(rep.Pairs, Pair{A: x.ID, B: y.ID})
		}
	}

	switch alg {
	case AlgoTransformers:
		stA := storage.NewMemStore(opt.PageSize)
		stB := storage.NewMemStore(opt.PageSize)
		ia, bsA, err := core.BuildIndex(stA, a, core.IndexConfig{World: world})
		if err != nil {
			return nil, err
		}
		ib, bsB, err := core.BuildIndex(stB, b, core.IndexConfig{World: world})
		if err != nil {
			return nil, err
		}
		rep.BuildWall = bsA.Wall + bsB.Wall
		rep.BuildIO = bsA.IO.Add(bsB.IO)
		rep.IndexedPages = stA.NumPages() + stB.NumPages()
		joinEmit := serializeEmit(opt.Join.Parallelism, opt.CollectPairs, emit)
		js, err := core.Join(ia, ib, core.JoinConfig{
			DisableTransforms: opt.Join.DisableTransforms,
			TSU:               opt.Join.TSU,
			TSO:               opt.Join.TSO,
			FixedThresholds:   opt.Join.FixedThresholds,
			GuideB:            opt.Join.GuideB,
			Disk:              disk,
			CachePages:        opt.Join.CachePages,
			Parallelism:       opt.Join.Parallelism,
		}, joinEmit)
		if err != nil {
			return nil, err
		}
		rep.Transformers = js
		rep.JoinWall = js.Wall
		rep.JoinIO = js.IO
		rep.Comparisons = js.Comparisons
		rep.MetaComps = js.MetaComparisons
		rep.Results = js.Results

	case AlgoPBSM:
		tiles := opt.PBSMTilesPerDim
		if tiles <= 0 {
			tiles = 10
		}
		tl, err := pbsm.NewTiling(world, tiles, 0)
		if err != nil {
			return nil, err
		}
		stA := storage.NewMemStore(opt.PageSize)
		stB := storage.NewMemStore(opt.PageSize)
		ia, bsA, err := pbsm.BuildIndex(stA, a, tl)
		if err != nil {
			return nil, err
		}
		ib, bsB, err := pbsm.BuildIndex(stB, b, tl)
		if err != nil {
			return nil, err
		}
		rep.BuildWall = bsA.Wall + bsB.Wall
		rep.BuildIO = bsA.IO.Add(bsB.IO)
		rep.IndexedPages = stA.NumPages() + stB.NumPages()
		js, err := pbsm.Join(ia, ib, grid.Config{}, emit)
		if err != nil {
			return nil, err
		}
		rep.JoinWall = js.Wall
		rep.JoinIO = js.IO
		rep.Comparisons = js.Comparisons
		rep.Results = js.Results

	case AlgoRTree:
		stA := storage.NewMemStore(opt.PageSize)
		stB := storage.NewMemStore(opt.PageSize)
		ta, bsA, err := rtree.Bulkload(stA, a, rtree.Config{Fanout: opt.RTreeFanout, World: world})
		if err != nil {
			return nil, err
		}
		tb, bsB, err := rtree.Bulkload(stB, b, rtree.Config{Fanout: opt.RTreeFanout, World: world})
		if err != nil {
			return nil, err
		}
		rep.BuildWall = bsA.Wall + bsB.Wall
		rep.BuildIO = bsA.IO.Add(bsB.IO)
		rep.IndexedPages = stA.NumPages() + stB.NumPages()
		js, err := rtree.SyncJoin(ta, tb, rtree.JoinConfig{}, emit)
		if err != nil {
			return nil, err
		}
		rep.JoinWall = js.Wall
		rep.JoinIO = js.IO
		rep.Comparisons = js.Comparisons
		rep.MetaComps = js.MetaComparisons
		rep.Results = js.Results

	case AlgoGIPSY:
		// GIPSY must predetermine the sparse (guide) and dense (indexed)
		// sides; use the smaller dataset as guide, as its authors intend.
		sparse, dense := a, b
		sparseIsA := true
		if len(a) > len(b) {
			sparse, dense = b, a
			sparseIsA = false
		}
		st := storage.NewMemStore(opt.PageSize)
		idx, bs, err := gipsy.BuildIndex(st, dense, gipsy.Config{World: world})
		if err != nil {
			return nil, err
		}
		rep.BuildWall = bs.Wall
		rep.BuildIO = bs.IO
		rep.IndexedPages = st.NumPages()
		js, err := gipsy.Join(sparse, idx, gipsy.JoinConfig{}, func(s, d Element) {
			if sparseIsA {
				emit(s, d)
			} else {
				emit(d, s)
			}
		})
		if err != nil {
			return nil, err
		}
		rep.JoinWall = js.Wall
		rep.JoinIO = js.IO
		rep.Comparisons = js.Comparisons
		rep.MetaComps = js.MetaComparisons
		rep.Results = js.Results

	case AlgoNaive:
		start := time.Now()
		pairs := naive.Join(a, b)
		rep.JoinWall = time.Since(start)
		rep.Comparisons = uint64(len(a)) * uint64(len(b))
		rep.Results = uint64(len(pairs))
		if opt.CollectPairs {
			rep.Pairs = pairs
		}

	default:
		return nil, fmt.Errorf("transformers: unknown algorithm %q", alg)
	}

	rep.BuildIOTime = disk.IOTime(rep.BuildIO)
	rep.BuildTotal = rep.BuildWall + rep.BuildIOTime
	rep.JoinIOTime = disk.IOTime(rep.JoinIO)
	rep.JoinTotal = rep.JoinWall + rep.JoinIOTime
	return rep, nil
}
