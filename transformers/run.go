package transformers

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"

	// Register the sharded meta-engines (shard-transformers, shard-grid)
	// with the registry: every layer above — the CLI tools, the bench
	// harness, the serving daemon — imports this facade, so the import here
	// makes the sharded tier reachable everywhere by name.
	_ "repro/internal/engine/shard"
)

// Algorithm selects a spatial join engine for Run. Values are engine
// registry names — see engine.Names() (exposed here via EngineNames) for
// the full set, including engines registered by external packages.
type Algorithm string

// The four disk-based algorithms of the paper's evaluation plus the two
// in-memory references.
const (
	// AlgoTransformers is the paper's contribution (§III–§VI).
	AlgoTransformers Algorithm = engine.Transformers
	// AlgoPBSM is the Partition Based Spatial-Merge join [3].
	AlgoPBSM Algorithm = engine.PBSM
	// AlgoRTree is the synchronized R-tree traversal [2] over STR-bulkloaded
	// trees [10].
	AlgoRTree Algorithm = engine.RTree
	// AlgoGIPSY is the crawling join for contrasting densities [4]. Run
	// uses the smaller dataset as the (required) predetermined sparse side.
	AlgoGIPSY Algorithm = engine.GIPSY
	// AlgoGrid is the in-memory grid hash join [11] run directly on the
	// element sets (no paged index).
	AlgoGrid Algorithm = engine.Grid
	// AlgoNaive is the O(|A|·|B|) nested loop (reference/testing only).
	AlgoNaive Algorithm = engine.Naive
)

// Algorithms lists the disk-based algorithms in the paper's evaluation
// order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoTransformers, AlgoPBSM, AlgoRTree, AlgoGIPSY}
}

// EngineNames lists every registered join engine — the full registry,
// including the in-memory references and externally registered engines.
func EngineNames() []string { return engine.Names() }

// RunOptions configures an end-to-end Run.
type RunOptions struct {
	// PageSize is the disk page size; 8KB when zero.
	PageSize int
	// World bounds partitioning for all algorithms; union of the dataset
	// MBBs when zero. PBSM requires it to cover both datasets.
	World Box
	// Disk prices I/O; storage.DefaultDiskModel() when zero.
	Disk storage.DiskModel
	// PBSMTilesPerDim sets PBSM's tile grid resolution (10 in the paper's
	// synthetic experiments, 20 for neuroscience data); 10 when zero.
	PBSMTilesPerDim int
	// RTreeFanout caps R-tree node fanout; page capacity when zero.
	RTreeFanout int
	// ShardTiles sets the tile count K of the sharded meta-engines
	// (shard-transformers, shard-grid); 0 picks K from dataset statistics.
	ShardTiles int
	// Join forwards TRANSFORMERS-specific knobs.
	Join JoinOptions
	// CollectPairs returns the result pairs in the report (costs memory on
	// big joins; counts are always reported).
	CollectPairs bool
}

// engineOptions translates RunOptions into the registry's option set.
func (opt RunOptions) engineOptions() engine.Options {
	return engine.Options{
		PageSize:          opt.PageSize,
		World:             opt.World,
		Disk:              opt.Disk,
		PBSMTilesPerDim:   opt.PBSMTilesPerDim,
		RTreeFanout:       opt.RTreeFanout,
		ShardTiles:        opt.ShardTiles,
		DiscardPairs:      !opt.CollectPairs,
		DisableTransforms: opt.Join.DisableTransforms,
		TSU:               opt.Join.TSU,
		TSO:               opt.Join.TSO,
		FixedThresholds:   opt.Join.FixedThresholds,
		GuideB:            opt.Join.GuideB,
		CachePages:        opt.Join.CachePages,
		Parallelism:       opt.Join.Parallelism,
	}
}

// RunReport is the uniform cost report of one end-to-end Run, with the
// paper's three join-phase metrics (join time split into in-memory time and
// modeled I/O time, and the number of intersection tests) plus indexing
// cost.
type RunReport struct {
	Algorithm Algorithm

	// Indexing phase.
	BuildWall    time.Duration
	BuildIO      storage.Stats
	BuildIOTime  time.Duration // modeled
	BuildTotal   time.Duration // BuildWall + BuildIOTime
	IndexedPages int

	// Join phase.
	JoinWall    time.Duration // in-memory join time
	JoinIO      storage.Stats
	JoinIOTime  time.Duration // modeled
	JoinTotal   time.Duration // JoinWall + JoinIOTime
	Comparisons uint64        // element-element intersection tests
	MetaComps   uint64        // metadata comparisons (descriptor/node tests)
	Results     uint64

	// TRANSFORMERS-specific detail (zero for other algorithms).
	Transformers core.JoinStats

	// Shard is the fan-out record when a sharded meta-engine ran (nil
	// otherwise): tiles, replication, dedup drops, worker utilization.
	Shard *engine.ShardStats

	// Pairs is populated only with RunOptions.CollectPairs.
	Pairs []Pair
}

// reportFromResult flattens an engine result into the facade's report type.
func reportFromResult(res *engine.Result) *RunReport {
	return &RunReport{
		Algorithm:    Algorithm(res.Engine),
		BuildWall:    res.Stats.BuildWall,
		BuildIO:      res.Stats.BuildIO,
		BuildIOTime:  res.Stats.BuildIOTime,
		BuildTotal:   res.Stats.BuildTotal,
		IndexedPages: res.Stats.IndexedPages,
		JoinWall:     res.Stats.JoinWall,
		JoinIO:       res.Stats.JoinIO,
		JoinIOTime:   res.Stats.JoinIOTime,
		JoinTotal:    res.Stats.JoinTotal,
		Comparisons:  res.Stats.Candidates,
		MetaComps:    res.Stats.MetaComparisons,
		Results:      res.Stats.Refinements,
		Transformers: res.Stats.Transformers,
		Shard:        res.Stats.Shard,
		Pairs:        res.Pairs,
	}
}

// Run executes one algorithm end to end (index both datasets, join them) on
// an in-memory simulated disk and reports uniform cost metrics. Any name in
// EngineNames() is accepted. The input slices are reordered in place by the
// partitioning algorithms.
func Run(alg Algorithm, a, b []Element, opt RunOptions) (*RunReport, error) {
	res, err := engine.Run(context.Background(), string(alg), a, b, opt.engineOptions())
	if err != nil {
		return nil, fmt.Errorf("transformers: %w", err)
	}
	return reportFromResult(res), nil
}

// RunStream executes one algorithm like Run but delivers each result pair to
// emit as the join finds it instead of materializing the result: memory
// stays bounded by the engine's working state even when a skewed join's
// output approaches |A|·|B|. Returning an error from emit aborts the join
// early and RunStream returns that error (a canceled ctx aborts the same
// way). The report's counters cover the completed join; Pairs is always nil
// and RunOptions.CollectPairs is ignored.
func RunStream(ctx context.Context, alg Algorithm, a, b []Element, opt RunOptions, emit func(Pair) error) (*RunReport, error) {
	res, err := engine.RunStream(ctx, string(alg), a, b, opt.engineOptions(), emit)
	if err != nil {
		return nil, fmt.Errorf("transformers: %w", err)
	}
	return reportFromResult(res), nil
}
